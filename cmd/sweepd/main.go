// Command sweepd serves simulation sweeps over HTTP: a long-running
// sharded sweep service over one shared experiment engine and one warm-
// checkpoint store (see internal/sweepd and DESIGN.md "Sweep service").
//
//	sweepd -addr :8642 -checkpoint-dir /var/cache/specslice -jobs 8
//
// Clients (cmd/sweepctl, or plain curl) POST sweep specs — workload ×
// config grids — to /v1/sweeps and read per-run results back as NDJSON.
// Every run goes through the engine memo and the checkpoint cache, so N
// clients submitting overlapping grids cost one simulation per unique
// run; with -checkpoint-dir the warm half of that economy extends across
// server restarts and across other processes sharing the directory
// (cross-process single-flight: concurrent builders of one warm prefix
// collapse to a single simulation fleet-wide).
//
// Capacity and backpressure: -jobs bounds concurrent simulations, -queue
// bounds queued runs; a sweep that would overflow the queue is refused
// with 429 and a Retry-After estimate. -checkpoint-max-bytes bounds the
// on-disk store with LRU eviction. GET /v1/stats exposes engine, store,
// and queue telemetry.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/bpred"
	"repro/internal/harness"
	"repro/internal/sweepd"
)

func main() {
	var (
		addr     = flag.String("addr", ":8642", "listen address")
		jobs     = flag.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		queueCap = flag.Int("queue", 4096, "max queued runs before sweeps are refused with 429")
		scale    = flag.Float64("scale", 1.0, "default region scale (sweeps may override per spec)")
		ckDir    = flag.String("checkpoint-dir", "", "shared warm-checkpoint store directory")
		ckMax    = flag.Int64("checkpoint-max-bytes", 0, "LRU-evict the checkpoint store past this size (0 = unbounded)")
		warmFlg  = flag.String("warm", "detailed", "warm-up mode: detailed|functional|functional-interp")
		bpredFlg = flag.String("bpred", "", "default direction predictor, name[:params]")
		ipredFlg = flag.String("ipred", "", "default indirect target predictor, name[:params]")
		useOrc   = flag.Bool("oracle", false, "validate every run against the functional model")
		verbose  = flag.Bool("v", false, "log sweep admission, rejection, and completion")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	if _, err := bpred.NewDir(*bpredFlg); err != nil {
		fail(err)
	}
	if _, err := bpred.NewIndirect(*ipredFlg); err != nil {
		fail(err)
	}
	warmMode, err := harness.ParseWarmMode(*warmFlg)
	if err != nil {
		fail(err)
	}

	e := harness.NewEngine(harness.Params{Scale: *scale, BPred: *bpredFlg, IndirectPred: *ipredFlg}, *jobs)
	e.Ckpt = harness.NewCheckpointer(*ckDir, warmMode)
	e.Ckpt.MaxBytes = *ckMax
	e.Oracle = harness.OracleOptions{Enabled: *useOrc}

	srv := sweepd.New(e, *jobs, *queueCap)
	if *verbose {
		srv.Logf = log.Printf
	}
	srv.Start()
	defer srv.Close()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("sweepd: listening on %s (scale %g, warm %s, checkpoint-dir %q)",
		*addr, *scale, warmMode, *ckDir)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fail(err)
	}
}
