// Command benchjson converts `go test -bench` output into a stable JSON
// document, so benchmark results can be committed alongside the code that
// produced them (BENCH_*.json) and diffed across PRs by machines instead
// of eyeballs.
//
// Usage:
//
//	go test -run '^$' -bench 'Workload|CycleLoopAllocs' -benchmem . | benchjson -out BENCH_PR3.json
//	go test -bench . -benchmem ./... | benchjson            # JSON to stdout
//
// Every `value unit` pair on a benchmark line is kept: the standard ns/op,
// B/op, and allocs/op, plus any b.ReportMetric custom units (IPC,
// mispredicts, ...). For benchmarks that b.SetBytes their simulated region
// (BenchmarkWorkload*, BenchmarkCycleLoopAllocs), one "byte" is one
// simulated instruction, so the MB/s column is simulated megainstructions
// per second; benchjson surfaces that as the derived insts_per_sec.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name  string `json:"name"`
	Iters int64  `json:"iterations"`
	// NsPerOp, BytesPerOp, AllocsPerOp are the standard testing columns
	// (zero when the column is absent).
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  float64 `json:"b_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_op,omitempty"`
	// InstsPerSec is derived from the MB/s column (SetBytes(region) makes
	// bytes == simulated instructions); zero when the benchmark has no
	// throughput column.
	InstsPerSec float64 `json:"insts_per_sec,omitempty"`
	// Metrics holds every remaining value/unit pair (b.ReportMetric).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level document.
type Report struct {
	Schema     string      `json:"schema"`
	Go         string      `json:"go,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	rep := Report{Schema: "bench/v1"}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"):
			// Environment echoes; the cpu/pkg lines below carry the useful part.
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one result line:
//
//	BenchmarkFoo/bar-8   12   9200100 ns/op   0.99 MB/s   1.36 IPC   104 B/op   28153 allocs/op
//
// i.e. a name, an iteration count, then value/unit pairs.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: trimProcSuffix(f[0]), Iters: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "MB/s":
			// SetBytes(simulated instructions) ⇒ MB/s is Minsts/s.
			b.InstsPerSec = v * 1e6
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// trimProcSuffix drops the trailing -GOMAXPROCS from a benchmark name, so
// reports from differently sized machines diff cleanly.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
