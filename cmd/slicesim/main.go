// Command slicesim runs one workload on the simulated SMT machine, with or
// without its speculative slices, and reports the run's statistics.
//
// Usage:
//
//	slicesim -workload vpr -slices -run 400000
//	slicesim -workload mcf -wide8
//	slicesim -workload gzip -disasm            # print program + slice code
//	slicesim -workload eon -slices -trace      # stream telemetry events as text
//	slicesim -workload eon -trace -trace-format=jsonl -trace-out=events.jsonl
//	slicesim -workload eon -trace -trace-format=chrome -trace-out=trace.json
//	slicesim -workload vpr -bpred gshare:4096,10   # swap the direction predictor
//
// -bpred and -ipred select the direction / indirect predictor from the
// registry in internal/bpred ("name" or "name:params"); an unknown name
// errors with the list of registered predictors.
//
// Warm-up runs under the warm configuration and is excluded from the
// reported statistics. -checkpoint-dir caches the warmed machine state on
// disk so repeated invocations skip the warm-up simulation entirely;
// -warm=functional fast-forwards the warm-up functionally instead of
// simulating it cycle by cycle (approximate; see DESIGN.md).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bpred"
	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/oracle"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// writeOracleReport dumps the divergence list as JSON for CI artifacts.
func writeOracleReport(path string, err error) {
	var de *oracle.DivergenceError
	if path == "" || !errors.As(err, &de) {
		return
	}
	if werr := os.WriteFile(path, de.WriteReport(), 0o644); werr != nil {
		fmt.Fprintln(os.Stderr, "slicesim: oracle report:", werr)
	} else {
		fmt.Fprintf(os.Stderr, "slicesim: oracle report written to %s\n", path)
	}
}

func main() {
	var (
		name     = flag.String("workload", "vpr", "workload name (see -list)")
		multi    = flag.String("multiprog", "", "co-schedule 2-4 comma-separated workloads (e.g. vpr,mcf); overrides -workload")
		list     = flag.Bool("list", false, "list workloads and exit")
		slices   = flag.Bool("slices", false, "enable the speculative slice hardware")
		wide8    = flag.Bool("wide8", false, "use the 8-wide machine (default 4-wide)")
		warmup   = flag.Uint64("warmup", 0, "warm-up instructions (default: workload suggestion)")
		run      = flag.Uint64("run", 0, "measured instructions (default: workload suggestion)")
		disasm   = flag.Bool("disasm", false, "print the program and slice code, then exit")
		trace    = flag.Bool("trace", false, "stream telemetry events (implies -slices)")
		traceFmt = flag.String("trace-format", "text", "trace sink: text, jsonl, or chrome")
		traceOut = flag.String("trace-out", "", "trace output file (default stdout)")
		top      = flag.Int("top", 0, "print the N static instructions with the most PDEs")
		perfect  = flag.Bool("perfect", false, "perfect branch prediction and caches (limit study)")
		bpredFlg = flag.String("bpred", "", "direction predictor, name[:params] (e.g. yags, value, gshare:4096,10)")
		ipredFlg = flag.String("ipred", "", "indirect target predictor, name[:params] (e.g. cascaded)")
		asJSON   = flag.Bool("json", false, "emit the run's full counter snapshot as JSON")
		ckDir    = flag.String("checkpoint-dir", "", "persist warm-up checkpoints in this directory (created if missing)")
		ckMax    = flag.Int64("checkpoint-max-bytes", 0, "LRU-evict the checkpoint store past this size (0 = unbounded)")
		warmFlg  = flag.String("warm", "detailed", "warm-up mode: detailed|functional|functional-interp")
		useOrc   = flag.Bool("oracle", false, "validate the run against the functional model (differential oracle)")
		orcEvery = flag.Int64("oracle-every", 0, "oracle invariant-sweep period in cycles (0 = default, <0 disables)")
		orcOut   = flag.String("oracle-report", "", "write oracle divergence reports (JSON) to this file on failure")
	)
	flag.Parse()

	warmMode, err := harness.ParseWarmMode(*warmFlg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-8s %s\n", w.Name, w.Description)
		}
		return
	}

	if *multi != "" {
		runMulti(*multi, *slices, *warmup, *run, *bpredFlg, *ipredFlg,
			harness.OracleOptions{Enabled: *useOrc, Every: *orcEvery}, *orcOut, *asJSON)
		return
	}

	w, err := workloads.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *disasm {
		for _, p := range w.Image.Programs() {
			fmt.Print(p.Disasm())
			fmt.Println()
		}
		return
	}

	cfg := cpu.Config4Wide()
	if *wide8 {
		cfg = cpu.Config8Wide()
	}
	if *perfect {
		cfg.Perfect = cpu.Perfect{AllBranches: true, AllLoads: true}
	}
	cfg.BPred, cfg.IndirectPred = *bpredFlg, *ipredFlg
	// Resolve the predictor specs up front so a typo fails with the
	// registry's name listing instead of deep inside warm-up.
	if _, err := bpred.NewDir(cfg.BPred); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, err := bpred.NewIndirect(cfg.IndirectPred); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	warm, region := w.SuggestedWarmup, w.SuggestedRun
	if *warmup > 0 {
		warm = *warmup
	}
	if *run > 0 {
		region = *run
	}
	useSlices := *slices || *trace

	// Warm through the checkpointer: the warm prefix runs under the warm
	// configuration, the machine quiesces, and the measurement core is
	// restored from the snapshot with zeroed counters. With -checkpoint-dir
	// the snapshot persists, so re-running with different measurement-only
	// flags (-perfect, -trace, -top) skips the warm-up simulation.
	cp := harness.NewCheckpointer(*ckDir, warmMode)
	cp.MaxBytes = *ckMax
	core, ck, warmSrc, err := cp.WarmedCoreCkpt(w, cfg, useSlices, warm)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *trace {
		sink, cleanup, err := openTracer(*traceFmt, *traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer cleanup()
		core.SetTracer(sink)
	}
	var orc *oracle.Oracle
	if *useOrc {
		// The oracle's functional model starts from the same warm checkpoint
		// the measurement core restored from, so it validates the measured
		// region regardless of how the warm-up was produced.
		orc = oracle.FromCheckpoint(w.Image, ck, oracle.Options{
			Workload: w.Name,
			WarmKey:  harness.WarmKeyFor(w.Name, useSlices, warm, warmMode, cfg),
			Every:    *orcEvery,
		})
		orc.Attach(core)
	}
	s := core.Run(region)
	if s.CycleGuardHits > 0 {
		fmt.Fprintf(os.Stderr,
			"slicesim: WARNING: run hit the MaxCycles guard after %d cycles — results cover a truncated region\n",
			s.Cycles)
	}
	if orc != nil {
		if err := core.CheckInvariants(); err != nil {
			fmt.Fprintf(os.Stderr, "slicesim: oracle: %v\n", err)
			os.Exit(1)
		}
		if err := orc.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "slicesim: %v\n", err)
			writeOracleReport(*orcOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "slicesim: oracle: %d retirements validated, no divergence\n", orc.Retired())
	}

	if *asJSON {
		snap := core.Snapshot()
		out := map[string]any{
			"workload": w.Name,
			"machine":  cfg.Name,
			"slices":   useSlices,
			"warmFrom": warmSrc,
			"snapshot": &snap,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("workload   %s (%s, slices=%v, warm from %s)\n", w.Name, cfg.Name, useSlices, warmSrc)
	fmt.Printf("retired    %d instructions in %d cycles (IPC %.3f)\n", s.MainRetired, s.Cycles, s.IPC())
	fmt.Printf("branches   %d (%d mispredicted, %.2f%%)\n", s.Branches, s.Mispredicts, s.MispredictRate()*100)
	fmt.Printf("loads      %d (%d missed, %.2f%%)\n", s.Loads, s.LoadMisses, s.LoadMissRate()*100)
	fmt.Printf("fetched    %d main (%d wrong path), %d helper\n", s.MainFetched, s.MainWrongPath, s.HelperFetched)
	if useSlices {
		fmt.Printf("forks      %d taken, %d squashed, %d ignored\n", s.Forks, s.ForksSquashed, s.ForksIgnored)
		acc := 0.0
		if n := s.PredsCorrect + s.PredsIncorrect; n > 0 {
			acc = float64(s.PredsCorrect) / float64(n) * 100
		}
		fmt.Printf("preds      %d overrides (%.1f%% correct), %d late, %d early resolutions\n",
			s.PredsUsed, acc, s.PredsLateUsed, s.EarlyResolutions)
		fmt.Printf("prefetch   %d slice prefetches, %d main misses covered\n", s.SlicePrefetches, s.MissesCovered)
	}
	if *top > 0 {
		fmt.Printf("\ntop %d PDE contributors:\n", *top)
		for _, st := range profile.TopOffenders(s, *top) {
			kind := "load"
			if st.IsBranch {
				kind = "branch"
			}
			fmt.Printf("  %#08x %-6s execs=%-8d misses=%-6d mispredicts=%-6d\n",
				st.PC, kind, st.Execs, st.Misses, st.Mispredicts)
		}
	}
}

// runMulti is the -multiprog mode: co-schedule several workloads on one
// core (multi-programmed SMT) and report per-program statistics.
// Multi-programmed cores cannot be checkpointed, so the warm region runs
// inline and -checkpoint-dir/-warm do not apply; when the oracle is on it
// observes the warm region too.
func runMulti(list string, withSlices bool, warm, run uint64, bpredSpec, ipredSpec string, o harness.OracleOptions, orcOut string, asJSON bool) {
	var group []*workloads.Workload
	for _, n := range strings.Split(list, ",") {
		w, err := workloads.ByName(strings.TrimSpace(n))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		group = append(group, w)
	}
	p := harness.Params{BPred: bpredSpec, IndirectPred: ipredSpec}
	snap, err := harness.RunMP(group, p, withSlices, warm, run, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slicesim:", err)
		writeOracleReport(orcOut, err)
		os.Exit(1)
	}
	if o.Enabled {
		fmt.Fprintln(os.Stderr, "slicesim: oracle: all programs validated, no divergence")
	}

	sched := make([]string, len(group))
	for i, w := range group {
		sched[i] = w.Name
	}
	if asJSON {
		out := map[string]any{
			"schedule": strings.Join(sched, "+"),
			"machine":  fmt.Sprintf("mp%d-4wide", len(group)),
			"slices":   withSlices,
			"snapshot": &snap,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("schedule   %s (mp%d-4wide, slices=%v)\n", strings.Join(sched, "+"), len(group), withSlices)
	var throughput float64
	for i, w := range group {
		s := &snap.Progs[i]
		throughput += s.IPC()
		fmt.Printf("p%d %-8s retired %d in %d cycles (IPC %.3f); branches %d (%d misp), loads %d (%d missed)\n",
			i, w.Name, s.MainRetired, s.Cycles, s.IPC(), s.Branches, s.Mispredicts, s.Loads, s.LoadMisses)
		if withSlices {
			acc := 0.0
			if n := s.PredsCorrect + s.PredsIncorrect; n > 0 {
				acc = float64(s.PredsCorrect) / float64(n) * 100
			}
			fmt.Printf("   slices: %d forks, %d preds used (%.1f%% correct), %d prefetches\n",
				s.Forks, s.PredsUsed+s.PredsLateUsed, acc, s.SlicePrefetches)
		}
	}
	fmt.Printf("throughput %.3f IPC (sum of per-program IPCs)\n", throughput)
}

// openTracer builds the requested trace sink. cleanup flushes the sink's
// framing (the Chrome array terminator) and closes the output file.
func openTracer(format, path string) (stats.Tracer, func(), error) {
	var w io.Writer = os.Stdout
	var file *os.File
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return nil, nil, err
		}
		w, file = f, f
	}
	closeFile := func() {
		if file != nil {
			file.Close()
		}
	}
	switch format {
	case "text":
		return stats.NewTextTracer(w), closeFile, nil
	case "jsonl":
		t := stats.NewJSONLTracer(w)
		return t, func() {
			if err := t.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
			}
			closeFile()
		}, nil
	case "chrome":
		t := stats.NewChromeTracer(w)
		return t, func() {
			if err := t.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
			}
			closeFile()
		}, nil
	default:
		closeFile()
		return nil, nil, fmt.Errorf("unknown -trace-format %q (want text, jsonl, or chrome)", format)
	}
}
