// Command profiler characterizes problem instructions (§2.2): it runs a
// baseline region of one or all workloads, attributes cache misses and
// branch mispredictions to static instructions, and reports the small set
// that accounts for a disproportionate share of PDEs.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cpu"
	"repro/internal/profile"
	"repro/internal/workloads"
)

func main() {
	var (
		name = flag.String("workload", "", "workload name (default: all)")
		top  = flag.Int("top", 10, "top-N PDE contributors to print per workload")
		runN = flag.Uint64("run", 0, "measured instructions (default: workload suggestion)")
	)
	flag.Parse()

	var ws []*workloads.Workload
	if *name == "" {
		ws = workloads.All()
	} else {
		w, err := workloads.ByName(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ws = []*workloads.Workload{w}
	}

	for _, w := range ws {
		region := w.SuggestedRun
		if *runN > 0 {
			region = *runN
		}
		core := cpu.MustNew(cpu.Config4Wide(), w.Image, w.NewMemory(), w.Entry, nil)
		core.Run(w.SuggestedWarmup)
		core.ResetStats()
		s := core.Run(region)
		r := profile.Characterize(s, profile.DefaultOptions(region))

		fmt.Printf("%s: %d problem loads (%.0f%% of mem ops, %.0f%% of misses); "+
			"%d problem branches (%.0f%% of branches, %.0f%% of mispredictions)\n",
			w.Name, r.MemSI, r.MemFrac*100, r.MissCoverage*100,
			r.BrSI, r.BrFrac*100, r.MispredCoverage*100)
		for _, st := range profile.TopOffenders(s, *top) {
			kind := "load  "
			rate := st.MissRate()
			if st.IsBranch {
				kind = "branch"
				rate = st.MispredictRate()
			}
			fmt.Printf("  %#08x %s execs=%-8d PDEs=%-6d rate=%.1f%%\n",
				st.PC, kind, st.Execs, st.Misses+st.Mispredicts, rate*100)
		}
	}
}
