// Command autoslice runs the automatic slice construction pipeline of
// §3.3 as a closed loop: profile a workload's problem instructions on the
// baseline machine, cluster them into per-fork-point groups, build and
// optimize candidate slices, measure each candidate under the
// differential oracle, and accept or reject it on measured override
// accuracy and net speedup. The result is the same auto-vs-hand
// comparison the experiments driver exports as figureauto.
//
//	autoslice -workload crafty            closed loop on one workload
//	autoslice -workload all               every workload
//	autoslice -workload eon -print        also disassemble the candidates
//	autoslice -workload eon -auto=false   legacy one-shot (no validation)
//
// The closed loop always validates every candidate run against the
// functional model; -oracle additionally validates the baseline and
// hand-slice reference legs. The legacy -auto=false path builds exactly
// one slice from the top-ranked fork point and reports its measured
// effect without oracle validation — useful for poking at the
// constructor itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/autoslice"
	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/profile"
	"repro/internal/slicehw"
	"repro/internal/workloads"
)

func main() {
	var (
		name   = flag.String("workload", "crafty", "workload to slice, or \"all\"")
		auto   = flag.Bool("auto", true, "run the full closed loop (profile → cluster → build → validate → accept)")
		print  = flag.Bool("print", false, "print the generated slice code")
		scale  = flag.Float64("scale", 1.0, "region scale factor (closed loop)")
		jobs   = flag.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		useOrc = flag.Bool("oracle", true, "also oracle-validate the baseline/hand reference legs")
		trace  = flag.Int("trace", 80_000, "trace length for construction (legacy one-shot)")
		lead   = flag.String("lead", "25,90", "min,max fork lead in dynamic instructions (legacy one-shot)")
		region = flag.Uint64("run", 0, "measured instructions (legacy one-shot; default: workload suggestion)")
	)
	flag.Parse()

	var ws []*workloads.Workload
	if *name == "all" {
		ws = workloads.All()
	} else {
		w, err := workloads.ByName(*name)
		if err != nil {
			fail(err)
		}
		ws = []*workloads.Workload{w}
	}

	if *auto {
		closedLoop(ws, *scale, *jobs, *useOrc, *print)
		return
	}
	if *name == "all" {
		fail(fmt.Errorf("-auto=false runs one workload at a time; pick one with -workload"))
	}
	oneShot(ws[0], *trace, *lead, *region, *print)
}

// closedLoop runs the full pipeline through the shared experiment engine
// and prints the auto-vs-hand comparison plus per-candidate verdicts.
func closedLoop(ws []*workloads.Workload, scale float64, jobs int, useOrc, print bool) {
	e := harness.NewEngine(harness.Params{Scale: scale}, jobs)
	e.Oracle = harness.OracleOptions{Enabled: useOrc}
	builds := e.FigureAutoDetail(ws, harness.DefaultAutoParams())

	rows := make([]harness.FigureAutoRow, len(builds))
	for i := range builds {
		rows[i] = builds[i].Row
	}
	fmt.Print(harness.FormatFigureAuto(rows))

	if print {
		for _, b := range builds {
			for _, bu := range b.Builts {
				fmt.Printf("\n%s (fork %#x, %d instructions, live-ins %v):\n",
					bu.Slice.Name, bu.Slice.ForkPC, bu.Slice.StaticSize, bu.Slice.LiveIns)
				fmt.Print(bu.Program.Disasm())
			}
		}
	}

	validated := 0
	for i := range rows {
		if rows[i].AutoSlices > 0 && rows[i].OracleValidated {
			validated++
		}
	}
	fmt.Printf("\n%d/%d workloads accepted an oracle-validated auto slice\n", validated, len(rows))
	if validated == 0 {
		os.Exit(2)
	}
}

// oneShot is the legacy single-candidate path: profile, pick the
// top-ranked fork point, build one slice, and measure it — no clustering,
// no repair, no oracle.
func oneShot(w *workloads.Workload, traceLen int, lead string, region uint64, print bool) {
	minLead, maxLead := parseLead(lead)

	// 1. Profile: find the problem instructions (§2.2). Every problem
	// branch is sliceable — non-zero-testing kinds (BLT/BGE/BLE/BGT) get
	// their guard recomputed from the compare producer.
	core := cpu.MustNew(cpu.Config4Wide(), w.Image, w.NewMemory(), w.Entry, nil)
	core.Run(w.SuggestedWarmup)
	core.ResetStats()
	runLen := w.SuggestedRun
	if region > 0 {
		runLen = region
	}
	s := core.Run(runLen)
	prof := profile.Characterize(s, profile.DefaultOptions(runLen))
	problemPCs := prof.ProblemPCs()
	if len(problemPCs) == 0 {
		fail(fmt.Errorf("no problem instructions found in %s", w.Name))
	}
	fmt.Printf("profiled %d problem PCs (%d loads, %d branches)\n",
		len(problemPCs), len(prof.LoadPCs), len(prof.BranchPCs))

	// 2. Trace and pick a fork point. PCs with no dynamic instance in the
	// trace cannot be sliced; report them instead of dropping silently.
	tr, err := autoslice.CollectTrace(w.Image, w.NewMemory(), w.Entry, traceLen)
	if err != nil {
		fail(err)
	}
	if _, skipped := autoslice.ClusterProblemPCs(tr, problemPCs, 50); len(skipped) > 0 {
		fmt.Printf("skipped %d problem PCs with no instance in the %d-instruction trace:", len(skipped), traceLen)
		for _, pc := range skipped {
			fmt.Printf(" %#x", pc)
		}
		fmt.Println()
	}
	cands := autoslice.SelectForkPoint(tr, problemPCs, minLead, maxLead)
	if len(cands) == 0 {
		fail(fmt.Errorf("no fork candidates"))
	}
	fork := cands[0]
	fmt.Printf("fork point %#x (coverage %.0f%%, purity %.0f%%, mean lead %.0f instructions)\n",
		fork.PC, fork.Coverage*100, fork.Purity*100, fork.MeanLead)

	// 3. Extract and emit the slice.
	built, err := autoslice.Build(tr, fork.PC, problemPCs, autoslice.DefaultOptions())
	if err != nil {
		fail(err)
	}
	sl := built.Slice
	fmt.Printf("slice: %d instructions, live-ins %v, %d PGIs, %d prefetch loads\n",
		sl.StaticSize, sl.LiveIns, len(sl.PGIs), len(sl.CoveredLoadPCs))
	if print {
		fmt.Println()
		fmt.Print(built.Program.Disasm())
	}

	// 4. Compare baseline vs auto-slice-assisted execution.
	im, err := asm.NewImage(w.Image.Programs()[0], built.Program)
	if err != nil {
		fail(err)
	}
	run := func(table *slicehw.Table) *cpu.Core {
		c := cpu.MustNew(cpu.Config4Wide(), im, w.NewMemory(), w.Entry, table)
		c.Run(w.SuggestedWarmup)
		c.ResetStats()
		c.Run(runLen)
		return c
	}
	base := run(nil)
	auto := run(slicehw.MustTable([]*slicehw.Slice{sl}))

	fmt.Printf("\nbaseline:   IPC %.3f, %d mispredictions, %d load misses\n",
		base.S.IPC(), base.S.Mispredicts, base.S.LoadMisses)
	fmt.Printf("auto slice: IPC %.3f, %d mispredictions, %d load misses\n",
		auto.S.IPC(), auto.S.Mispredicts, auto.S.LoadMisses)
	// A run cut short (or identical cycle counts) must not print NaN/Inf.
	speedup := "n/a"
	if base.S.Cycles > 0 && auto.S.Cycles > 0 {
		speedup = fmt.Sprintf("%.1f%%", (float64(base.S.Cycles)/float64(auto.S.Cycles)-1)*100)
	}
	acc := "n/a"
	if n := auto.S.PredsCorrect + auto.S.PredsIncorrect; n > 0 {
		acc = fmt.Sprintf("%.1f%%", float64(auto.S.PredsCorrect)/float64(n)*100)
	}
	fmt.Printf("speedup %s; %d overrides at %s accuracy; %d early resolutions\n",
		speedup, auto.S.PredsUsed, acc, auto.S.EarlyResolutions)
}

func parseLead(s string) (int, int) {
	parts := strings.SplitN(s, ",", 2)
	if len(parts) != 2 {
		fail(fmt.Errorf("bad -lead %q", s))
	}
	lo, err1 := strconv.Atoi(parts[0])
	hi, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || lo <= 0 || hi <= lo {
		fail(fmt.Errorf("bad -lead %q", s))
	}
	return lo, hi
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
