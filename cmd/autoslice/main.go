// Command autoslice runs the automatic slice construction pipeline of
// §3.3 end to end: profile a workload's problem instructions on the
// baseline machine, pick a fork point from an execution trace, extract the
// backward dataflow slice, emit an executable speculative slice, and
// compare baseline vs auto-slice-assisted execution.
//
//	autoslice -workload crafty
//	autoslice -workload eon -lead 30,90 -print
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/autoslice"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/slicehw"
	"repro/internal/workloads"
)

func main() {
	var (
		name   = flag.String("workload", "crafty", "workload to slice")
		trace  = flag.Int("trace", 80_000, "trace length for construction")
		lead   = flag.String("lead", "25,90", "min,max fork lead (dynamic instructions)")
		print  = flag.Bool("print", false, "print the generated slice code")
		region = flag.Uint64("run", 0, "measured instructions (default: workload suggestion)")
	)
	flag.Parse()

	w, err := workloads.ByName(*name)
	if err != nil {
		fail(err)
	}
	minLead, maxLead := parseLead(*lead)

	// 1. Profile: find the problem instructions (§2.2).
	core := cpu.MustNew(cpu.Config4Wide(), w.Image, w.NewMemory(), w.Entry, nil)
	core.Run(w.SuggestedWarmup)
	core.ResetStats()
	runLen := w.SuggestedRun
	if *region > 0 {
		runLen = *region
	}
	s := core.Run(runLen)
	prof := profile.Characterize(s, profile.DefaultOptions(runLen))

	// Auto-PGIs need zero-testing branches; everything else is prefetch.
	var branchPCs, problemPCs []uint64
	for pc := range prof.BranchPCs {
		if in, ok := w.Image.At(pc); ok && (in.Op == isa.BEQ || in.Op == isa.BNE) {
			branchPCs = append(branchPCs, pc)
		}
	}
	for pc := range prof.LoadPCs {
		problemPCs = append(problemPCs, pc)
	}
	problemPCs = append(problemPCs, branchPCs...)
	sort.Slice(problemPCs, func(i, j int) bool { return problemPCs[i] < problemPCs[j] })
	if len(problemPCs) == 0 {
		fail(fmt.Errorf("no sliceable problem instructions found in %s", w.Name))
	}
	fmt.Printf("profiled %d problem PCs (%d zero-testing branches)\n", len(problemPCs), len(branchPCs))

	// 2. Trace and pick a fork point.
	tr, err := autoslice.CollectTrace(w.Image, w.NewMemory(), w.Entry, *trace)
	if err != nil {
		fail(err)
	}
	cands := autoslice.SelectForkPoint(tr, problemPCs, minLead, maxLead)
	if len(cands) == 0 {
		fail(fmt.Errorf("no fork candidates"))
	}
	fork := cands[0]
	fmt.Printf("fork point %#x (coverage %.0f%%, mean lead %.0f instructions)\n",
		fork.PC, fork.Coverage*100, fork.MeanLead)

	// 3. Extract and emit the slice.
	built, err := autoslice.Build(tr, fork.PC, problemPCs, autoslice.DefaultOptions())
	if err != nil {
		fail(err)
	}
	sl := built.Slice
	fmt.Printf("slice: %d instructions, live-ins %v, %d PGIs, %d prefetch loads\n",
		sl.StaticSize, sl.LiveIns, len(sl.PGIs), len(sl.CoveredLoadPCs))
	if *print {
		fmt.Println()
		fmt.Print(built.Program.Disasm())
	}

	// 4. Compare baseline vs auto-slice-assisted execution.
	im, err := asm.NewImage(w.Image.Programs()[0], built.Program)
	if err != nil {
		fail(err)
	}
	run := func(table *slicehw.Table) *cpu.Core {
		c := cpu.MustNew(cpu.Config4Wide(), im, w.NewMemory(), w.Entry, table)
		c.Run(w.SuggestedWarmup)
		c.ResetStats()
		c.Run(runLen)
		return c
	}
	base := run(nil)
	auto := run(slicehw.MustTable([]*slicehw.Slice{sl}))

	fmt.Printf("\nbaseline:   IPC %.3f, %d mispredictions, %d load misses\n",
		base.S.IPC(), base.S.Mispredicts, base.S.LoadMisses)
	fmt.Printf("auto slice: IPC %.3f, %d mispredictions, %d load misses\n",
		auto.S.IPC(), auto.S.Mispredicts, auto.S.LoadMisses)
	acc := 0.0
	if n := auto.S.PredsCorrect + auto.S.PredsIncorrect; n > 0 {
		acc = float64(auto.S.PredsCorrect) / float64(n) * 100
	}
	fmt.Printf("speedup %.1f%%; %d overrides at %.1f%% accuracy; %d early resolutions\n",
		(float64(base.S.Cycles)/float64(auto.S.Cycles)-1)*100,
		auto.S.PredsUsed, acc, auto.S.EarlyResolutions)
}

func parseLead(s string) (int, int) {
	parts := strings.SplitN(s, ",", 2)
	if len(parts) != 2 {
		fail(fmt.Errorf("bad -lead %q", s))
	}
	lo, err1 := strconv.Atoi(parts[0])
	hi, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || lo <= 0 || hi <= lo {
		fail(fmt.Errorf("bad -lead %q", s))
	}
	return lo, hi
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
