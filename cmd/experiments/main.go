// Command experiments regenerates every table and figure of the paper's
// evaluation:
//
//	experiments -exp table1     machine parameters
//	experiments -exp table2     problem-instruction coverage
//	experiments -exp figure1    baseline / problem-perfect / all-perfect IPC
//	experiments -exp table3     slice characterization
//	experiments -exp figure11   slice vs constrained-limit speedups
//	experiments -exp table4     detailed slice-execution statistics
//	experiments -exp figurepred slices vs value/correlation/perfect predictors
//	experiments -exp figureauto auto-constructed vs hand-built slices (closed loop)
//	experiments -exp figuremp   multi-programmed SMT contention (co-scheduled pairs/quads)
//	experiments -exp all        everything above except figurepred/figureauto/figuremp
//
// -scale shrinks the measured regions for quick runs (1.0 ≈ a few hundred
// thousand instructions per run; the paper used 100M-instruction regions).
//
// All experiments share one engine, so simulations common to several
// tables (e.g. the 4-wide baselines, or Figure 11's and Table 4's slice
// runs) execute once. -jobs bounds the worker pool (default GOMAXPROCS);
// -v prints one line per simulation plus a final hit/miss summary.
//
// -json runs every experiment (including figurepred, figureauto, and
// figuremp) and emits one machine-readable document (schema
// specslice-experiments/6)
// containing all tables and figures, for bench trajectories and plotting
// scripts.
//
// -bpred and -ipred swap the direction / indirect predictor of every
// driver-built baseline configuration (registry spec, e.g. -bpred
// gshare:4096,10); figurepred's alternative legs stay pinned to their own
// predictors.
//
// -checkpoint-dir persists warm-up checkpoints across invocations: the
// first run simulates each distinct warm prefix once and stores a machine
// snapshot; later runs (any experiment, any measurement-only config
// change) restore it instead of re-simulating. -warm=functional replaces
// detailed warm-up simulation with a fast functional fast-forward that
// touch-warms caches and predictors (approximate; see DESIGN.md).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bpred"
	"repro/internal/harness"
	"repro/internal/oracle"
	"repro/internal/workloads"
)

// printSummary reports the engine's memo and warm-checkpoint counters.
func printSummary(e *harness.Engine) {
	st := e.Stats()
	fmt.Fprintf(os.Stderr, "engine: %d simulations, %d memo hits, %d insts simulated, %s sim time\n",
		st.Misses, st.Hits, st.SimInsts, st.SimWall.Round(time.Millisecond))
	ck := st.Checkpoints
	fmt.Fprintf(os.Stderr, "warm:   %d hits, %d misses, %d restores, disk %d loads / %d stores (%d bytes)\n",
		ck.WarmHits, ck.WarmMisses, ck.Restores, ck.DiskLoads, ck.DiskStores, ck.DiskBytes)
	// Store coordination counters only move with a shared -checkpoint-dir
	// (or a size bound); keep the quiet case quiet.
	if ck.SingleflightWaits+ck.LeaseTakeovers+ck.Evictions > 0 {
		fmt.Fprintf(os.Stderr, "store:  %d singleflight waits (%d served by peers), %d lease takeovers, %d evictions (%d bytes reclaimed)\n",
			ck.SingleflightWaits, ck.SingleflightHits, ck.LeaseTakeovers, ck.Evictions, ck.EvictedBytes)
	}
}

func main() {
	var (
		exp      = flag.String("exp", "all", "table1|table2|figure1|table3|figure11|table4|figurepred|figureauto|figuremp|all")
		scale    = flag.Float64("scale", 1.0, "region scale factor")
		only     = flag.String("workload", "", "restrict to one workload")
		jobs     = flag.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "log every simulation and the memo summary")
		asJSON   = flag.Bool("json", false, "emit all tables/figures as one JSON document (ignores -exp)")
		ckDir    = flag.String("checkpoint-dir", "", "persist warm-up checkpoints in this directory (created if missing)")
		ckMax    = flag.Int64("checkpoint-max-bytes", 0, "LRU-evict the checkpoint store past this size (0 = unbounded)")
		warmFlg  = flag.String("warm", "detailed", "warm-up mode: detailed|functional|functional-interp")
		useOrc   = flag.Bool("oracle", false, "validate every run against the functional model (differential oracle)")
		orcEvery = flag.Int64("oracle-every", 0, "oracle invariant-sweep period in cycles (0 = default, <0 disables)")
		orcOut   = flag.String("oracle-report", "", "write oracle divergence reports (JSON) to this file on failure")
		bpredFlg = flag.String("bpred", "", "direction predictor for baseline configs, name[:params]")
		ipredFlg = flag.String("ipred", "", "indirect target predictor for baseline configs, name[:params]")
	)
	flag.Parse()

	// Resolve the predictor specs up front so a typo fails with the
	// registry's name listing instead of deep inside a parallel batch.
	if _, err := bpred.NewDir(*bpredFlg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, err := bpred.NewIndirect(*ipredFlg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The experiment drivers panic on run errors (mustRunAll); turn an
	// oracle divergence back into a report plus a nonzero exit instead of
	// a stack trace.
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		err, ok := r.(error)
		var de *oracle.DivergenceError
		if !ok || !errors.As(err, &de) {
			panic(r)
		}
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		if *orcOut != "" {
			if werr := os.WriteFile(*orcOut, de.WriteReport(), 0o644); werr != nil {
				fmt.Fprintln(os.Stderr, "experiments: oracle report:", werr)
			} else {
				fmt.Fprintf(os.Stderr, "experiments: oracle report written to %s\n", *orcOut)
			}
		}
		os.Exit(1)
	}()

	warmMode, err := harness.ParseWarmMode(*warmFlg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ws := workloads.All()
	if *only != "" {
		w, err := workloads.ByName(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ws = []*workloads.Workload{w}
	}

	e := harness.NewEngine(harness.Params{Scale: *scale, BPred: *bpredFlg, IndirectPred: *ipredFlg}, *jobs)
	e.Ckpt = harness.NewCheckpointer(*ckDir, warmMode)
	e.Ckpt.MaxBytes = *ckMax
	e.Oracle = harness.OracleOptions{Enabled: *useOrc, Every: *orcEvery}
	if *verbose {
		e.Progress = func(ev harness.Event) {
			mode := "base"
			if ev.Spec.WithSlices {
				mode = "slices"
			}
			if ev.Memoized {
				fmt.Fprintf(os.Stderr, "memo  %-8s %-6s %s\n", ev.Spec.Workload, mode, ev.Spec.Cfg.Name)
				return
			}
			fmt.Fprintf(os.Stderr, "run   %-8s %-6s %-6s %9d insts  warm=%-4s %s\n",
				ev.Spec.Workload, mode, ev.Spec.Cfg.Name, ev.Insts, ev.Warm, ev.Wall.Round(time.Millisecond))
		}
	}

	if *asJSON {
		doc := e.Export(ws)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *verbose {
			st := e.Stats()
			fmt.Fprintf(os.Stderr, "engine: %d simulations, %d memo hits, %d insts simulated, %s sim time\n",
				st.Misses, st.Hits, st.SimInsts, st.SimWall.Round(time.Millisecond))
		}
		return
	}

	runExp := func(name string, f func()) {
		start := time.Now()
		f()
		fmt.Printf("(%s finished in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	all := *exp == "all"
	if all || *exp == "table1" {
		runExp("table1", func() { fmt.Print(harness.FormatTable1()) })
	}
	if all || *exp == "table2" {
		runExp("table2", func() { fmt.Print(harness.FormatTable2(e.Table2(ws))) })
	}
	if all || *exp == "figure1" {
		runExp("figure1", func() { fmt.Print(harness.FormatFigure1(e.Figure1(ws))) })
	}
	if all || *exp == "table3" {
		runExp("table3", func() { fmt.Print(harness.FormatTable3(harness.Table3(ws))) })
	}
	if all || *exp == "figure11" {
		runExp("figure11", func() { fmt.Print(harness.FormatFigure11(e.Figure11(ws))) })
	}
	if all || *exp == "table4" {
		runExp("table4", func() { fmt.Print(harness.FormatTable4(e.Table4(ws))) })
	}
	// figurepred is explicit-only in text mode: "all" reproduces exactly
	// the paper's tables and figures (and its output stays stable for
	// golden comparisons); the predictor comparison is an extension.
	if *exp == "figurepred" {
		runExp("figurepred", func() { fmt.Print(harness.FormatFigurePred(e.FigurePred(ws))) })
	}
	// figureauto is explicit-only for the same reason: the closed-loop
	// automatic construction pipeline is an extension on top of the
	// paper's hand-built slices.
	if *exp == "figureauto" {
		runExp("figureauto", func() { fmt.Print(harness.FormatFigureAuto(e.FigureAuto(ws))) })
	}
	// figuremp is explicit-only too: the multi-programmed contention study
	// is an extension beyond the paper's single-program evaluation.
	if *exp == "figuremp" {
		runExp("figuremp", func() { fmt.Print(harness.FormatFigureMP(e.FigureMP(ws))) })
	}
	switch *exp {
	case "all", "table1", "table2", "figure1", "table3", "figure11", "table4", "figurepred", "figureauto", "figuremp":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(1)
	}

	if *verbose {
		printSummary(e)
	}
}
