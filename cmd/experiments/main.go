// Command experiments regenerates every table and figure of the paper's
// evaluation:
//
//	experiments -exp table1     machine parameters
//	experiments -exp table2     problem-instruction coverage
//	experiments -exp figure1    baseline / problem-perfect / all-perfect IPC
//	experiments -exp table3     slice characterization
//	experiments -exp figure11   slice vs constrained-limit speedups
//	experiments -exp table4     detailed slice-execution statistics
//	experiments -exp all        everything above
//
// -scale shrinks the measured regions for quick runs (1.0 ≈ a few hundred
// thousand instructions per run; the paper used 100M-instruction regions).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/workloads"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "table1|table2|figure1|table3|figure11|table4|all")
		scale = flag.Float64("scale", 1.0, "region scale factor")
		only  = flag.String("workload", "", "restrict to one workload")
	)
	flag.Parse()

	ws := workloads.All()
	if *only != "" {
		w, err := workloads.ByName(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ws = []*workloads.Workload{w}
	}
	p := harness.Params{Scale: *scale}

	runExp := func(name string, f func()) {
		start := time.Now()
		f()
		fmt.Printf("(%s finished in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	all := *exp == "all"
	if all || *exp == "table1" {
		runExp("table1", func() { fmt.Print(harness.FormatTable1()) })
	}
	if all || *exp == "table2" {
		runExp("table2", func() { fmt.Print(harness.FormatTable2(harness.Table2(ws, p))) })
	}
	if all || *exp == "figure1" {
		runExp("figure1", func() { fmt.Print(harness.FormatFigure1(harness.Figure1(ws, p))) })
	}
	if all || *exp == "table3" {
		runExp("table3", func() { fmt.Print(harness.FormatTable3(harness.Table3(ws))) })
	}
	if all || *exp == "figure11" {
		runExp("figure11", func() { fmt.Print(harness.FormatFigure11(harness.Figure11(ws, p))) })
	}
	if all || *exp == "table4" {
		runExp("table4", func() { fmt.Print(harness.FormatTable4(harness.Table4(ws, p))) })
	}
	switch *exp {
	case "all", "table1", "table2", "figure1", "table3", "figure11", "table4":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}
