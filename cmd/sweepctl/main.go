// Command sweepctl is the sweepd client:
//
//	sweepctl [-addr URL] submit [flags]   submit a sweep, stream results
//	sweepctl [-addr URL] stats            engine + store + queue telemetry
//	sweepctl [-addr URL] cancel <id>      cancel a sweep's queued runs
//
// submit builds the sweep spec either from -file (a specslice-sweep/1
// JSON document, "-" for stdin) or from flags:
//
//	sweepctl submit                                  # 12-workload baseline grid
//	sweepctl submit -workloads vpr,mcf -slices both  # base + slice legs
//	sweepctl submit -width 8 -scale 0.1 -priority 5
//
// Results stream to stdout as NDJSON, exactly as the server sends them
// (-q reduces that to a one-line summary). The exit status is nonzero if
// any run failed or the sweep was cancelled, so shell scripts and CI can
// gate on a whole sweep.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/sweepd"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sweepctl:", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8642", "sweepd base URL")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: sweepctl [-addr URL] submit|stats|cancel [args]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	base := strings.TrimRight(*addr, "/")

	switch flag.Arg(0) {
	case "submit":
		submit(base, flag.Args()[1:])
	case "stats":
		get(base + "/v1/stats")
	case "cancel":
		if flag.NArg() != 2 {
			fail(fmt.Errorf("usage: sweepctl cancel <sweep-id>"))
		}
		del(base + "/v1/sweeps/" + flag.Arg(1))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func submit(base string, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		file      = fs.String("file", "", "sweep spec JSON file (\"-\" = stdin); overrides the grid flags")
		workloads = fs.String("workloads", "", "comma-separated workload names (empty = all)")
		slices    = fs.String("slices", "off", "slice legs: off|on|both")
		width     = fs.Int("width", 4, "machine width: 4 or 8")
		scale     = fs.Float64("scale", 0, "region scale override (0 = server default)")
		priority  = fs.Int("priority", 0, "queue priority (higher first)")
		oracle    = fs.Bool("oracle", false, "force the differential oracle onto every run")
		bpredFlg  = fs.String("bpred", "", "direction predictor override, name[:params]")
		ipredFlg  = fs.String("ipred", "", "indirect predictor override, name[:params]")
		quiet     = fs.Bool("q", false, "suppress the NDJSON stream; print a one-line summary")
	)
	fs.Parse(args)

	var body []byte
	if *file != "" {
		var b []byte
		var err error
		if *file == "-" {
			b, err = io.ReadAll(os.Stdin)
		} else {
			b, err = os.ReadFile(*file)
		}
		if err != nil {
			fail(err)
		}
		// Round-trip through the spec type so a malformed file fails here,
		// not as an opaque 400.
		var spec sweepd.SweepSpec
		if err := json.Unmarshal(b, &spec); err != nil {
			fail(fmt.Errorf("%s: %w", *file, err))
		}
		body = b
	} else {
		spec := sweepd.SweepSpec{
			Schema:   sweepd.Schema,
			Scale:    *scale,
			Priority: *priority,
			Oracle:   *oracle,
		}
		if *workloads != "" {
			spec.Workloads = strings.Split(*workloads, ",")
		}
		var legs []sweepd.ConfigSpec
		if *slices == "off" || *slices == "both" {
			legs = append(legs, sweepd.ConfigSpec{Width: *width, BPred: *bpredFlg, IPred: *ipredFlg})
		}
		if *slices == "on" || *slices == "both" {
			legs = append(legs, sweepd.ConfigSpec{Width: *width, WithSlices: true, BPred: *bpredFlg, IPred: *ipredFlg})
		}
		if legs == nil {
			fail(fmt.Errorf("-slices %q: want off, on, or both", *slices))
		}
		spec.Configs = legs
		var err error
		if body, err = json.Marshal(spec); err != nil {
			fail(err)
		}
	}

	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(string(body)))
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		fmt.Fprintf(os.Stderr, "sweepctl: server busy (429), Retry-After %ss\n",
			resp.Header.Get("Retry-After"))
		io.Copy(os.Stdout, resp.Body)
		os.Exit(3)
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "sweepctl: %s\n", resp.Status)
		io.Copy(os.Stderr, resp.Body)
		os.Exit(1)
	}

	// Stream the NDJSON through, tallying the terminal record.
	start := time.Now()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var done sweepd.Record
	sawDone := false
	for sc.Scan() {
		line := sc.Bytes()
		var rec sweepd.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			fail(fmt.Errorf("bad record from server: %w", err))
		}
		if !*quiet {
			fmt.Println(string(line))
		}
		if rec.Type == "done" {
			done = rec
			sawDone = true
		}
		if rec.Type == "error" {
			fail(fmt.Errorf("%s", rec.Error))
		}
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	if !sawDone {
		fail(fmt.Errorf("stream ended without a done record"))
	}
	fmt.Fprintf(os.Stderr, "sweepctl: sweep %s: %d completed, %d errors, %d skipped in %s\n",
		done.Sweep, done.Completed, done.Errors, done.Skips, time.Since(start).Round(time.Millisecond))
	if done.Errors > 0 || done.Cancelled {
		os.Exit(1)
	}
}

func get(url string) {
	resp, err := http.Get(url)
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "sweepctl: %s\n", resp.Status)
		io.Copy(os.Stderr, resp.Body)
		os.Exit(1)
	}
	io.Copy(os.Stdout, resp.Body)
}

func del(url string) {
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		fail(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "sweepctl: %s\n", resp.Status)
		io.Copy(os.Stderr, resp.Body)
		os.Exit(1)
	}
	io.Copy(os.Stdout, resp.Body)
}
