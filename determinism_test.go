package repro

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// These tests are the guard for the zero-alloc cycle loop: DynInst
// pooling, ring queues, and the incremental scheduler must not change a
// single simulated outcome. Every simulation is a pure function of its
// spec, so two runs of the same region — whatever the pool reuse pattern,
// and whatever Run() call boundaries slice the region — must produce
// deeply equal stats.Snapshots. A stale field on a recycled DynInst, a
// dangling pool reference, or a ready-list ordering bug shows up here as a
// counter divergence.

const (
	detWarm   = 30_000
	detRegion = 60_000
)

func detCore(t testing.TB, w *workloads.Workload, slices bool) *cpu.Core {
	t.Helper()
	if slices {
		return cpu.MustNew(cpu.Config4Wide(), w.Image, w.NewMemory(), w.Entry, w.SliceTable())
	}
	return cpu.MustNew(cpu.Config4Wide(), w.Image, w.NewMemory(), w.Entry, nil)
}

// TestPoolDeterminism runs each region twice on independent cores —
// concurrently, so `go test -race` also exercises parallel pooled engines
// — and requires identical snapshots.
func TestPoolDeterminism(t *testing.T) {
	for _, name := range []string{"vpr", "mcf"} {
		for _, slices := range []bool{false, true} {
			name, slices := name, slices
			t.Run(fmt.Sprintf("%s/slices=%v", name, slices), func(t *testing.T) {
				t.Parallel()
				w, err := workloads.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				run := func(ch chan<- stats.Snapshot) {
					core := detCore(t, w, slices)
					core.Run(detWarm)
					core.ResetStats()
					core.Run(detRegion)
					ch <- core.Snapshot()
				}
				a, b := make(chan stats.Snapshot, 1), make(chan stats.Snapshot, 1)
				go run(a)
				go run(b)
				sa, sb := <-a, <-b
				if !reflect.DeepEqual(sa, sb) {
					t.Errorf("two identical runs diverged:\n%s", snapshotDiff(sa, sb))
				}
			})
		}
	}
}

// TestPoolReuseAcrossRuns re-simulates the same region through different
// Run() boundaries: the chunked core re-enters the cycle loop repeatedly
// over a pool warmed by all earlier chunks, and must track the straight
// run exactly.
func TestPoolReuseAcrossRuns(t *testing.T) {
	for _, name := range []string{"vpr", "mcf"} {
		for _, slices := range []bool{false, true} {
			name, slices := name, slices
			t.Run(fmt.Sprintf("%s/slices=%v", name, slices), func(t *testing.T) {
				t.Parallel()
				w, err := workloads.ByName(name)
				if err != nil {
					t.Fatal(err)
				}

				straight := detCore(t, w, slices)
				straight.Run(detWarm)
				straight.ResetStats()
				straight.Run(detRegion)

				chunked := detCore(t, w, slices)
				// Run targets are cumulative retired-instruction counts
				// since the last reset, so these chunks cover exactly the
				// same region.
				chunked.Run(detWarm / 3)
				chunked.Run(detWarm * 2 / 3)
				chunked.Run(detWarm)
				chunked.ResetStats()
				for i := 1; i <= 6; i++ {
					chunked.Run(uint64(detRegion * i / 6))
				}

				sa, sb := straight.Snapshot(), chunked.Snapshot()
				if !reflect.DeepEqual(sa, sb) {
					t.Errorf("chunked run diverged from straight run:\n%s", snapshotDiff(sa, sb))
				}
			})
		}
	}
}

// snapshotDiff renders the first differing top-level components, so a
// failure names the counter that went nondeterministic instead of dumping
// two full snapshots.
func snapshotDiff(a, b stats.Snapshot) string {
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	out := ""
	for i := 0; i < va.NumField(); i++ {
		f := va.Type().Field(i)
		if reflect.DeepEqual(va.Field(i).Interface(), vb.Field(i).Interface()) {
			continue
		}
		out += fmt.Sprintf("component %s differs:\n  a: %+v\n  b: %+v\n",
			f.Name, va.Field(i).Interface(), vb.Field(i).Interface())
	}
	if out == "" {
		out = "(snapshots differ only in unexported state)"
	}
	return out
}
