// Quickstart: assemble a tiny program, run it on the simulated
// out-of-order machine, and compare against the functional reference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

func main() {
	// A little kernel: sum an array of 1024 words through a pointer.
	const base = 0x20000
	b := asm.NewBuilder(0x1000)
	b.Li(1, base)            // pointer
	b.I(isa.LDI, 2, 0, 1024) // count
	b.I(isa.LDI, 3, 0, 0)    // sum
	b.Label("loop")
	b.Ld(4, 0, 1)
	b.R(isa.ADD, 3, 3, 4)
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 2, 2, -1)
	b.B(isa.BGT, 2, "loop")
	b.Halt()
	prog := b.MustBuild()

	image, err := asm.NewImage(prog)
	if err != nil {
		log.Fatal(err)
	}
	m := mem.New()
	for i := uint64(0); i < 1024; i++ {
		m.WriteU64(base+i*8, i)
	}

	// The cycle-level machine (Table 1's 4-wide configuration).
	core := cpu.MustNew(cpu.Config4Wide(), image, m, prog.Base, nil)
	s := core.Run(1 << 20)

	// The architectural reference must agree exactly.
	ref := mem.New()
	for i := uint64(0); i < 1024; i++ {
		ref.WriteU64(base+i*8, i)
	}
	fs, err := cpu.RunFunctional(image, ref, prog.Base, 1<<20)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sum (out-of-order core)   = %d\n", core.Main().Regs[3])
	fmt.Printf("sum (functional reference)= %d\n", fs.Regs[3])
	fmt.Printf("retired %d instructions in %d cycles (IPC %.2f)\n",
		s.MainRetired, s.Cycles, s.IPC())
	fmt.Printf("load misses: %d (the stream prefetcher covers the sequential walk)\n",
		s.LoadMisses)
}
