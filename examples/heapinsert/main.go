// Heapinsert walks through the paper's running example (Figures 2-5): the
// vpr heap-insertion kernel, its problem instructions, and the speculative
// slice that pre-executes them. It prints the slice code, then runs the
// kernel with and without slice hardware and reports what changed.
//
//	go run ./examples/heapinsert
package main

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/workloads"
)

func main() {
	w, err := workloads.ByName("vpr")
	if err != nil {
		panic(err)
	}

	fmt.Println("The vpr heap-insertion slice (compare with the paper's Figure 5):")
	fmt.Println()
	progs := w.Image.Programs()
	fmt.Print(progs[len(progs)-1].Disasm()) // the slice code region
	sl := w.Slices[0]
	fmt.Printf("\nfork PC %#x, live-ins %v, max %d loop iterations, %d PGI(s)\n\n",
		sl.ForkPC, sl.LiveIns, sl.MaxLoops, len(sl.PGIs))

	run := func(withSlices bool) *cpu.Core {
		var core *cpu.Core
		if withSlices {
			core = cpu.MustNew(cpu.Config4Wide(), w.Image, w.NewMemory(), w.Entry, w.SliceTable())
		} else {
			core = cpu.MustNew(cpu.Config4Wide(), w.Image, w.NewMemory(), w.Entry, nil)
		}
		core.Run(w.SuggestedWarmup)
		core.ResetStats()
		core.Run(w.SuggestedRun)
		return core
	}

	base := run(false)
	slice := run(true)

	bs, ss := base.S, slice.S
	fmt.Printf("baseline:     IPC %.3f, %d mispredictions, %d load misses\n",
		bs.IPC(), bs.Mispredicts, bs.LoadMisses)
	fmt.Printf("with slices:  IPC %.3f, %d mispredictions, %d load misses\n",
		ss.IPC(), ss.Mispredicts, ss.LoadMisses)
	fmt.Printf("speedup:      %.1f%%\n", (float64(bs.Cycles)/float64(ss.Cycles)-1)*100)
	fmt.Printf("slice effect: %d forks, %d prefetches, %d misses covered,\n",
		ss.Forks, ss.SlicePrefetches, ss.MissesCovered)
	fmt.Printf("              %d predictions matched (%d early resolutions — the paper\n",
		ss.PredsUsed+ss.PredsLateUsed, ss.EarlyResolutions)
	fmt.Println("              reports vpr has the most late predictions, 31%)")
}
