// Mcftree demonstrates the "long-running background slice" pattern (§6.1)
// on the mcf kernel: while the main thread walks one scattered linked
// list, a helper thread chases the *next* list's pointers, so its node
// lines are already on the way when the main thread arrives.
//
//	go run ./examples/mcftree
package main

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/workloads"
)

func main() {
	w, err := workloads.ByName("mcf")
	if err != nil {
		panic(err)
	}

	run := func(withSlices, predsOff bool) *cpu.Core {
		cfg := cpu.Config4Wide()
		cfg.SlicePredictionsOff = predsOff
		var core *cpu.Core
		if withSlices {
			core = cpu.MustNew(cfg, w.Image, w.NewMemory(), w.Entry, w.SliceTable())
		} else {
			core = cpu.MustNew(cfg, w.Image, w.NewMemory(), w.Entry, nil)
		}
		core.Run(w.SuggestedWarmup)
		core.ResetStats()
		core.Run(w.SuggestedRun)
		return core
	}

	base := run(false, false)
	pref := run(true, true) // prefetch only: PGI allocation disabled
	full := run(true, false)

	speedup := func(c *cpu.Core) float64 {
		return (float64(base.S.Cycles)/float64(c.S.Cycles) - 1) * 100
	}

	fmt.Printf("baseline:        IPC %.3f (%d load misses, %d mispredictions)\n",
		base.S.IPC(), base.S.LoadMisses, base.S.Mispredicts)
	fmt.Printf("prefetch only:   IPC %.3f  speedup %.1f%%  (misses %d)\n",
		pref.S.IPC(), speedup(pref), pref.S.LoadMisses)
	fmt.Printf("full slices:     IPC %.3f  speedup %.1f%%  (misses %d, mispredictions %d)\n",
		full.S.IPC(), speedup(full), full.S.LoadMisses, full.S.Mispredicts)
	frac := speedup(pref) / speedup(full)
	fmt.Printf("\n~%.0f%% of mcf's speedup comes from prefetching — Table 4 reports ~80%%.\n", frac*100)
	fmt.Printf("helper threads covered %d of the main thread's misses.\n", full.S.MissesCovered)
}
