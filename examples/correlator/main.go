// Correlator replays the paper's Figure 9 on the prediction correlation
// hardware directly: a slice guesses a loop will run three times and
// generates predictions P1..P3 for a conditionally executed problem
// branch; the main thread's actual path is A B C F B C D F B G, so P1 must
// be killed by the first loop-iteration kill, P2 must be the one the
// branch uses, and the loop exit must kill the rest.
//
//	go run ./examples/correlator
package main

import (
	"fmt"

	"repro/internal/slicehw"
	"repro/internal/stats"
)

func main() {
	const branchD = 0x2000
	s := &slicehw.Slice{
		Name:        "figure9",
		ForkPC:      0x1000,
		SlicePC:     0x100000,
		PGIs:        []slicehw.PGI{{SlicePC: 0x100010, BranchPC: branchD}},
		LoopKillPC:  0x2040, // block F, the loop back-edge
		SliceKillPC: 0x2080, // block G, the loop exit
	}
	c := slicehw.NewCorrelator(8)
	c.Tracer = stats.FuncTracer(func(e stats.Event) {
		fmt.Printf("  correlator: %-14s%s\n", e.Kind, e.Detail())
	})

	fmt.Println("fork: slice guesses three iterations, generates P1..P3")
	inst := c.NewInstance(s)
	p1 := c.Allocate(inst, branchD)
	p2 := c.Allocate(inst, branchD)
	p3 := c.Allocate(inst, branchD)
	c.Fill(p1, true)
	c.Fill(p2, false)
	c.Fill(p3, true)

	fmt.Println("\niteration 1: path B C F — the problem branch is skipped")
	fmt.Println("  block F fetched (loop-iteration kill): P1 dies unused")
	rec1 := c.KillLoop(s)
	fmt.Printf("  killed %d prediction(s)\n", len(rec1.Preds))

	fmt.Println("\niteration 2: path B C D F — the branch executes")
	_, dir, override := c.Lookup(branchD, true, "D2")
	fmt.Printf("  block D fetched: matched P2, override=%v, direction=%v (P2's value)\n", override, dir)
	rec2 := c.KillLoop(s)
	fmt.Printf("  block F fetched: killed %d prediction(s)\n", len(rec2.Preds))

	fmt.Println("\nloop exits: path B G — the slice kill fires")
	rec3 := c.KillSlice(s)
	fmt.Printf("  block G fetched: killed the remaining %d prediction(s)\n", len(rec3.Preds))
	fmt.Printf("\nqueue is empty: %d pending predictions remain\n", c.PendingFor(branchD))

	fmt.Println("\n--- mis-speculation recovery (§5.2) ---")
	fmt.Println("a kill performed on a squashed wrong path is undone exactly:")
	inst2 := c.NewInstance(s)
	q1 := c.Allocate(inst2, branchD)
	c.Fill(q1, true)
	rec := c.KillLoop(s) // wrong-path kill
	fmt.Printf("  wrong-path kill marked %d prediction(s)\n", len(rec.Preds))
	c.UndoKill(rec) // squash
	_, dir, override = c.Lookup(branchD, false, "replay")
	fmt.Printf("  after the squash, the replayed branch still matches: override=%v dir=%v\n", override, dir)
}
