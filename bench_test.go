// Package repro's top-level benchmarks regenerate every table and figure
// of the paper's evaluation at reduced scale (the paper measured
// 100M-instruction regions on SPEC2000; these use the workloads' suggested
// regions scaled down so `go test -bench=.` completes in minutes). Run
// `go run ./cmd/experiments` for the full-scale tables.
//
// Benchmark naming maps directly to the paper:
//
//	BenchmarkTable2    — problem-instruction coverage (§2.2)
//	BenchmarkFigure1   — baseline / problem-perfect / all-perfect IPC (§2.3)
//	BenchmarkTable3    — slice characterization (§3.2)
//	BenchmarkFigure11  — slice vs constrained-limit speedups (§6)
//	BenchmarkTable4    — detailed slice-execution statistics (§6.1)
//	BenchmarkWorkload* — per-workload base vs slice IPC (the headline)
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/mem"
	"repro/internal/workloads"
)

var benchParams = harness.Params{Scale: 0.25}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.Table2(workloads.All(), benchParams)
		if len(rows) != 12 {
			b.Fatal("missing rows")
		}
		if i == 0 {
			reportCoverage(b, rows)
		}
	}
}

func reportCoverage(b *testing.B, rows []harness.Table2Row) {
	var br, mem float64
	for _, r := range rows {
		br += r.BrMis
		mem += r.MisPct
	}
	b.ReportMetric(br/float64(len(rows)), "avg_mispred_coverage_%")
	b.ReportMetric(mem/float64(len(rows)), "avg_miss_coverage_%")
}

func BenchmarkFigure1(b *testing.B) {
	// The full 12×2×3 sweep is heavy; a representative subset keeps the
	// bench affordable while preserving the figure's shape.
	ws := pick(b, "vpr", "mcf", "eon", "gzip")
	for i := 0; i < b.N; i++ {
		rows := harness.Figure1(ws, benchParams)
		if i == 0 {
			var gain float64
			for _, r := range rows {
				gain += r.ProbPerf[0] / r.Base[0]
			}
			b.ReportMetric((gain/float64(len(rows))-1)*100, "avg_prob_perfect_gain_%")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.Table3(workloads.All())
		if len(rows) == 0 {
			b.Fatal("no slices")
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.Figure11(workloads.All(), benchParams)
		if i == 0 {
			var maxSpeedup float64
			for _, r := range rows {
				if r.SliceSpeedup > maxSpeedup {
					maxSpeedup = r.SliceSpeedup
				}
			}
			b.ReportMetric(maxSpeedup, "max_slice_speedup_%")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	ws := pick(b, "vpr", "eon", "gzip", "mcf", "twolf", "gap")
	for i := 0; i < b.N; i++ {
		cols := harness.Table4(ws, benchParams)
		if i == 0 {
			var frac float64
			for _, c := range cols {
				frac += c.FracFromLoads
			}
			b.ReportMetric(frac/float64(len(cols))*100, "avg_speedup_from_loads_%")
		}
	}
}

// BenchmarkExperimentsAll regenerates every simulation-backed table and
// figure through one shared engine — the `experiments -exp all` path —
// at jobs=1 and jobs=4. The memo cache collapses the cross-driver
// duplicates (Figure 11 and Table 4 share base and slice runs, Table 2
// shares Figure 1's 4-wide baseline), and the jobs=4 variant additionally
// fans the remaining unique runs across cores, so the speedup over
// jobs=1 scales with available CPUs.
//
// The engines share one warm-checkpoint cache, primed before the timer
// starts — the steady state of a persistent `-checkpoint-dir` (or of any
// engine re-run in one process): warm prefixes restore from snapshots
// instead of re-simulating, so the measured loop simulates measurement
// regions only. `warm_sims` reports the in-loop warm simulations, which
// must be zero.
func BenchmarkExperimentsAll(b *testing.B) {
	ws := pick(b, "vpr", "gzip", "mcf")
	runAll := func(e *harness.Engine) {
		e.Table2(ws)
		e.Figure1(ws)
		harness.Table3(ws)
		e.Figure11(ws)
		e.Table4(ws)
	}
	ckpt := harness.NewCheckpointer("", harness.WarmDetailed)
	{
		e := harness.NewEngine(benchParams, 0)
		e.Ckpt = ckpt
		runAll(e) // prime the checkpoint cache
	}
	primed := ckpt.Stats()
	for _, jobs := range []int{1, 4} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := harness.NewEngine(benchParams, jobs)
				e.Ckpt = ckpt
				runAll(e)
				if i == 0 {
					st := e.Stats()
					b.ReportMetric(float64(st.Misses), "sims")
					b.ReportMetric(float64(st.Hits), "memo_hits")
					b.ReportMetric(float64(st.SimInsts), "sim_insts")
					b.ReportMetric(float64(st.Checkpoints.WarmMisses-primed.WarmMisses), "warm_sims")
				}
			}
		})
	}
}

// Per-workload benches: simulated instructions per second and the base vs
// slice IPC pair for the headline comparison.
func BenchmarkWorkload(b *testing.B) {
	for _, w := range workloads.All() {
		w := w
		for _, slices := range []bool{false, true} {
			name := fmt.Sprintf("%s/slices=%v", w.Name, slices)
			b.Run(name, func(b *testing.B) {
				const region = 60_000
				for i := 0; i < b.N; i++ {
					var core *cpu.Core
					if slices {
						core = cpu.MustNew(cpu.Config4Wide(), w.Image, w.NewMemory(), w.Entry, w.SliceTable())
					} else {
						core = cpu.MustNew(cpu.Config4Wide(), w.Image, w.NewMemory(), w.Entry, nil)
					}
					core.Run(20_000)
					core.ResetStats()
					s := core.Run(region)
					if i == 0 {
						b.ReportMetric(s.IPC(), "IPC")
					}
				}
				b.SetBytes(region)
			})
		}
	}
}

// BenchmarkCycleLoopAllocs measures heap allocations in the steady-state
// cycle loop: the core is built and warmed outside the timed region, so
// allocs/op covers only Run() over the measured region. With DynInst
// pooling and ring queues the loop itself is allocation-free; the residue
// is lazy per-PC stat records re-created after ResetStats, bounded by the
// region's static footprint — far under one alloc per simulated
// instruction (the old loop allocated ~17 per instruction).
func BenchmarkCycleLoopAllocs(b *testing.B) {
	for _, name := range []string{"vpr", "mcf"} {
		for _, slices := range []bool{false, true} {
			w := pickOne(b, name)
			b.Run(fmt.Sprintf("%s/slices=%v", name, slices), func(b *testing.B) {
				const region = 60_000
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					var core *cpu.Core
					if slices {
						core = cpu.MustNew(cpu.Config4Wide(), w.Image, w.NewMemory(), w.Entry, w.SliceTable())
					} else {
						core = cpu.MustNew(cpu.Config4Wide(), w.Image, w.NewMemory(), w.Entry, nil)
					}
					core.Run(20_000)
					core.ResetStats()
					b.StartTimer()
					core.Run(region)
				}
				b.SetBytes(region)
			})
		}
	}
}

// TestCycleLoopAllocBudget is the enforced form of BenchmarkCycleLoopAllocs:
// a warmed core must average at most one heap allocation per simulated
// instruction over a measured region. The pools make the true figure ~0;
// the budget of 1.0 leaves room for the lazy stat-record refills without
// ever re-admitting the old per-cycle allocation churn.
func TestCycleLoopAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting needs a quiet heap")
	}
	w, err := workloads.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	core := cpu.MustNew(cpu.Config4Wide(), w.Image, w.NewMemory(), w.Entry, w.SliceTable())
	core.Run(20_000)
	core.ResetStats()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	s := core.Run(60_000)
	runtime.ReadMemStats(&after)

	allocs := after.Mallocs - before.Mallocs
	perInst := float64(allocs) / float64(s.MainRetired)
	t.Logf("%d allocs over %d retired instructions, %d forks (%.4f/inst)",
		allocs, s.MainRetired, s.Forks, perInst)
	// The region must actually exercise the fork path, or the budget says
	// nothing about per-fork allocations (e.g. live-in capture).
	if s.Forks == 0 {
		t.Error("measured region forked no slices; alloc budget does not cover the fork path")
	}
	if perInst > 1.0 {
		t.Errorf("cycle loop allocated %.2f/inst, budget is 1.0 — pooling regressed", perInst)
	}
}

// BenchmarkAblationQueueDepth sweeps the correlator's per-branch capacity —
// the design choice DESIGN.md calls out (Figure 10 shows 8; we default to
// 16 so a hoisted slice can hold a full iteration's predictions).
func BenchmarkAblationQueueDepth(b *testing.B) {
	w := pickOne(b, "gzip")
	for _, depth := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := cpu.Config4Wide()
				cfg.PredQueueDepth = depth
				core := cpu.MustNew(cfg, w.Image, w.NewMemory(), w.Entry, w.SliceTable())
				core.Run(30_000)
				core.ResetStats()
				s := core.Run(60_000)
				if i == 0 {
					b.ReportMetric(s.IPC(), "IPC")
					b.ReportMetric(float64(s.Mispredicts), "mispredicts")
				}
			}
		})
	}
}

// BenchmarkAblationThreadContexts sweeps idle helper contexts (the paper:
// "most programs benefit from having more than one idle thread").
func BenchmarkAblationThreadContexts(b *testing.B) {
	w := pickOne(b, "vpr")
	for _, n := range []int{2, 3, 4, 6} {
		b.Run(fmt.Sprintf("contexts=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := cpu.Config4Wide()
				cfg.ThreadContexts = n
				core := cpu.MustNew(cfg, w.Image, w.NewMemory(), w.Entry, w.SliceTable())
				core.Run(30_000)
				core.ResetStats()
				s := core.Run(60_000)
				if i == 0 {
					b.ReportMetric(s.IPC(), "IPC")
					b.ReportMetric(float64(s.ForksIgnored), "forks_ignored")
				}
			}
		})
	}
}

// BenchmarkAblationPredictionsOff isolates prefetching from prediction
// (Table 4's "fraction of speedup from loads").
func BenchmarkAblationPredictionsOff(b *testing.B) {
	w := pickOne(b, "twolf")
	for _, predsOff := range []bool{false, true} {
		b.Run(fmt.Sprintf("predsOff=%v", predsOff), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := cpu.Config4Wide()
				cfg.SlicePredictionsOff = predsOff
				core := cpu.MustNew(cfg, w.Image, w.NewMemory(), w.Entry, w.SliceTable())
				core.Run(30_000)
				core.ResetStats()
				s := core.Run(60_000)
				if i == 0 {
					b.ReportMetric(s.IPC(), "IPC")
				}
			}
		})
	}
}

func pick(b *testing.B, names ...string) []*workloads.Workload {
	b.Helper()
	var ws []*workloads.Workload
	for _, n := range names {
		ws = append(ws, pickOne(b, n))
	}
	return ws
}

func pickOne(b *testing.B, name string) *workloads.Workload {
	b.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkFunctionalExec measures pure functional-model throughput on
// both engines: the legacy decode-dispatch interpreter
// (cpu.RunFunctionalInterp) and the compiled threaded-code engine behind
// cpu.RunFunctional. SetBytes(region) makes the MB/s column simulated
// megainstructions per wall second; the compiled/interp ratio is the
// headline speedup committed in BENCH_PR6.json.
func BenchmarkFunctionalExec(b *testing.B) {
	const region = 1_000_000
	type engine struct {
		name string
		run  func(w *workloads.Workload, m *mem.Memory) (cpu.FuncState, error)
	}
	engines := []engine{
		{"interp", func(w *workloads.Workload, m *mem.Memory) (cpu.FuncState, error) {
			return cpu.RunFunctionalInterp(w.Image, m, w.Entry, region)
		}},
		{"compiled", func(w *workloads.Workload, m *mem.Memory) (cpu.FuncState, error) {
			return cpu.RunFunctional(w.Image, m, w.Entry, region)
		}},
	}
	for _, name := range []string{"vpr", "mcf", "gzip"} {
		w := pickOne(b, name)
		for _, e := range engines {
			e := e
			b.Run(fmt.Sprintf("%s/engine=%s", name, e.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					// Memory image construction is workload setup, not
					// engine throughput; keep it off the clock.
					b.StopTimer()
					m := w.NewMemory()
					b.StartTimer()
					st, err := e.run(w, m)
					if err != nil {
						b.Fatal(err)
					}
					if st.Retired != region {
						b.Fatalf("retired %d of %d (workload halted early)", st.Retired, region)
					}
				}
				b.SetBytes(region)
			})
		}
	}
}
